"""Tests for the warm engine cache and the concurrent query service."""

import threading
import time

import pytest

from repro.core.engine import PitexEngine
from repro.datasets.synthetic import load_dataset
from repro.exceptions import InvalidParameterError
from repro.obs.telemetry import Telemetry, get_telemetry, install
from repro.serve.cache import EngineCache
from repro.serve.service import DEFAULT_ENGINE_KEY, PitexService, QueryRequest


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("lastfm", scale=0.08, seed=11)


def make_engine(dataset, seed=7):
    return PitexEngine(
        dataset.graph, dataset.model, max_samples=40, index_samples=40, default_k=2, seed=seed
    )


# ----------------------------------------------------------------- EngineCache
def test_cache_hits_after_create(dataset):
    cache = EngineCache(capacity=2)
    engine = cache.get_or_create("a", lambda: make_engine(dataset))
    assert cache.get_or_create("a", lambda: pytest.fail("factory re-ran on a hit")) is engine
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_cache_lru_eviction(dataset):
    cache = EngineCache(capacity=2)
    for key in ("a", "b", "c"):
        cache.get_or_create(key, lambda: make_engine(dataset))
    assert cache.stats.evictions == 1
    assert cache.keys() == ["b", "c"]  # "a" was least recently used
    cache.get("b")
    cache.get_or_create("d", lambda: make_engine(dataset))
    assert cache.keys() == ["b", "d"]  # "c" evicted, "b" refreshed


def test_cache_invalidates_when_graph_version_changes(dataset):
    cache = EngineCache(capacity=2)
    graph = dataset.graph.copy()
    engine = PitexEngine(graph, dataset.model, max_samples=40, index_samples=40, default_k=2)
    cache.put("a", engine)
    assert cache.get("a") is engine
    source, target = next(
        (s, t)
        for s in graph.vertices()
        for t in graph.vertices()
        if s != t and not graph.has_edge(s, t)
    )
    graph.add_edge(source, target, [0.1] * graph.num_topics)
    assert cache.get("a") is None  # stale entry dropped
    assert cache.stats.invalidations == 1
    rebuilt = cache.get_or_create("a", lambda: make_engine(dataset))
    assert rebuilt is not engine


def test_cache_concurrent_create_runs_factory_once(dataset):
    cache = EngineCache(capacity=4)
    calls = []
    barrier = threading.Barrier(4)

    def factory():
        calls.append(1)
        return make_engine(dataset)

    def worker():
        barrier.wait()
        cache.get_or_create("shared", factory)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(calls) == 1


def test_cache_single_flight_under_contention_builds_exactly_once(dataset):
    """Regression: many staggered concurrent misses -> exactly one factory run.

    The factory sleeps so every thread arrives while the build is still in
    flight (the window in which a broken gate would let a second build
    through), and the returned engine must be the *same object* for all
    callers -- a second silent build would hand out a divergent engine.
    """
    cache = EngineCache(capacity=4, freeze=False)
    build_calls = []
    build_started = threading.Event()

    def slow_factory():
        build_calls.append(threading.get_ident())
        build_started.set()
        time.sleep(0.05)  # hold the gate open while the others pile up
        return make_engine(dataset)

    results = [None] * 8
    barrier = threading.Barrier(8)

    def worker(slot):
        barrier.wait()
        if slot % 2:
            build_started.wait(timeout=5.0)  # half the threads arrive mid-build
        results[slot] = cache.get_or_create("shared", slow_factory)

    threads = [threading.Thread(target=worker, args=(slot,)) for slot in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(build_calls) == 1, f"factory ran {len(build_calls)} times"
    assert all(engine is results[0] for engine in results)
    assert len(cache) == 1


def test_cache_single_flight_retries_after_factory_failure(dataset):
    """A failed build releases the gate; the next caller rebuilds cleanly."""
    cache = EngineCache(capacity=2, freeze=False)
    attempts = []

    def flaky_factory():
        attempts.append(1)
        if len(attempts) == 1:
            raise RuntimeError("transient build failure")
        return make_engine(dataset)

    with pytest.raises(RuntimeError):
        cache.get_or_create("k", flaky_factory)
    engine = cache.get_or_create("k", flaky_factory)
    assert len(attempts) == 2
    assert cache.get("k") is engine


def test_cache_freezes_on_insert_by_default(dataset):
    """Cached engines are shared across requests, so they freeze on insert."""
    cache = EngineCache(capacity=2, freeze_methods=["indexest", "lazy"])
    engine = cache.get_or_create("a", lambda: make_engine(dataset))
    assert engine.is_frozen
    assert engine.frozen_methods == ("indexest", "lazy")
    # A hit returns the already-frozen engine without re-freezing.
    assert cache.get_or_create("a", lambda: pytest.fail("rebuilt on a hit")) is engine

    unfrozen_cache = EngineCache(capacity=2, freeze=False)
    engine = unfrozen_cache.get_or_create("a", lambda: make_engine(dataset))
    assert not engine.is_frozen
    # put() never freezes: direct inserts keep lifecycle control at the caller.
    cache.put("b", make_engine(dataset))
    assert not cache.get("b").is_frozen


def test_cache_counters_flow_into_telemetry_registry(dataset):
    """Satellite: hit/miss/eviction accounting is visible without a cache ref.

    Every ``EngineCacheStats`` increment must be mirrored as an
    ``engine_cache.*`` counter in the process-wide registry -- that is what
    lets service snapshots report cache behaviour.
    """
    previous = install(Telemetry())
    try:
        cache = EngineCache(capacity=1, freeze=False)
        cache.get_or_create("a", lambda: make_engine(dataset))  # miss + build
        cache.get("a")  # hit
        cache.get_or_create("b", lambda: make_engine(dataset))  # miss, evicts "a"
        cache.invalidate("b")
        counters = get_telemetry().counters()
        assert counters["engine_cache.miss"] == 2
        assert counters["engine_cache.hit"] == 1
        assert counters["engine_cache.eviction"] == 1
        assert counters["engine_cache.invalidation"] == 1
        assert "engine_cache.single_flight_wait" not in counters
        assert cache.stats.as_dict() == {
            "hits": 1,
            "misses": 2,
            "evictions": 1,
            "invalidations": 1,
            "single_flight_waits": 0,
        }
    finally:
        install(previous)


def test_cache_single_flight_wait_is_counted(dataset):
    """A thread that blocks behind an in-flight build is counted as a waiter."""
    previous = install(Telemetry())
    try:
        cache = EngineCache(capacity=2, freeze=False)
        waiter_inbound = threading.Event()
        results = [None, None]

        def slow_factory():
            waiter_inbound.wait(timeout=5.0)
            time.sleep(0.25)  # hold the gate while the waiter reaches it
            return make_engine(dataset)

        def builder():
            results[0] = cache.get_or_create("shared", slow_factory)

        def waiter():
            waiter_inbound.set()
            results[1] = cache.get_or_create(
                "shared", lambda: pytest.fail("waiter must not build")
            )

        builder_thread = threading.Thread(target=builder)
        builder_thread.start()
        # The waiter may only start once the builder owns the gate, or it
        # could win the race and become the builder itself.
        deadline = time.monotonic() + 5.0
        while not cache._pending and time.monotonic() < deadline:
            time.sleep(0.005)
        assert cache._pending, "builder never registered its single-flight gate"
        waiter_thread = threading.Thread(target=waiter)
        waiter_thread.start()
        builder_thread.join()
        waiter_thread.join()
        assert results[0] is results[1]
        assert cache.stats.single_flight_waits == 1
        assert get_telemetry().counters()["engine_cache.single_flight_wait"] == 1
    finally:
        install(previous)


def test_cache_clear_counts_invalidations(dataset):
    """Regression (bugfix): clear() is a bulk invalidate, not a silent drop.

    Dropping N entries via clear() must add N to ``stats.invalidations`` and
    mirror the same amount into ``engine_cache.invalidation`` telemetry --
    previously cleared entries vanished without a trace, under-reporting
    drops relative to per-key invalidate().
    """
    previous = install(Telemetry())
    try:
        cache = EngineCache(capacity=4, freeze=False)
        for key in ("a", "b", "c"):
            cache.put(key, make_engine(dataset))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.invalidations == 3
        assert get_telemetry().counters()["engine_cache.invalidation"] == 3
        # An empty clear is a no-op on both stats and telemetry.
        cache.clear()
        assert cache.stats.invalidations == 3
        assert get_telemetry().counters()["engine_cache.invalidation"] == 3
    finally:
        install(previous)


def test_cache_put_same_key_replace_never_evicts(dataset):
    """Regression (bugfix): replacing a resident key must not run evictions.

    A same-key put never grows the cache, so at full capacity it must not
    evict (or count as evicting) the key's LRU neighbor -- previously the
    over-capacity loop could fire on a replace and throw out a live entry.
    """
    previous = install(Telemetry())
    try:
        cache = EngineCache(capacity=2, freeze=False)
        cache.put("a", make_engine(dataset, seed=1))
        cache.put("b", make_engine(dataset, seed=2))
        replacement = make_engine(dataset, seed=3)
        cache.put("a", replacement)  # replace at full capacity
        assert cache.stats.evictions == 0
        assert "engine_cache.eviction" not in get_telemetry().counters()
        assert sorted(cache.keys()) == ["a", "b"]
        assert cache.get("a") is replacement
        # The replace refreshed "a"'s recency: a genuine insert evicts "b".
        cache.put("c", make_engine(dataset, seed=4))
        assert cache.stats.evictions == 1
        assert cache.keys() == ["a", "c"]
    finally:
        install(previous)


def test_cache_rejects_nonpositive_capacity():
    with pytest.raises(InvalidParameterError):
        EngineCache(capacity=0)


def test_cache_rejects_unknown_freeze_methods():
    # Fail at construction, not after the first expensive factory build.
    with pytest.raises(InvalidParameterError):
        EngineCache(freeze_methods=["indexes"])  # typo for "indexest"


# ---------------------------------------------------------------- PitexService
def test_service_answers_queries_and_records_metrics(dataset):
    engine = make_engine(dataset)
    users = dataset.workload("mid", 3)
    with PitexService.for_engine(engine, num_workers=2, max_batch=2) as service:
        futures = [
            service.submit(QueryRequest(user=user, k=2, method="lazy", group="mid"))
            for user in users
        ]
        responses = [future.result() for future in futures]
    assert all(response.ok for response in responses)
    assert all(response.result.tag_ids for response in responses)
    snapshot = service.metrics.snapshot()
    assert snapshot["completed"] == 3
    assert snapshot["failed"] == 0
    assert snapshot["batches"] >= 2  # max_batch=2 forces at least two batches
    assert snapshot["latency"]["count"] == 3
    assert snapshot["latency"]["p99"] >= snapshot["latency"]["p50"] > 0.0
    assert snapshot["groups"]["mid"]["count"] == 3
    assert snapshot["throughput_qps"] > 0.0


def test_service_snapshot_carries_telemetry_deltas(dataset):
    """The metrics snapshot grows a telemetry section scoped to the service.

    Counters incremented before the service existed (engine builds, other
    tests) must not leak in: ServiceMetrics reports deltas against the
    registry state at construction.
    """
    previous = install(Telemetry())
    try:
        engine = make_engine(dataset)
        users = dataset.workload("mid", 3)
        get_telemetry().counter("query.count", 100)  # pre-service noise
        with PitexService.for_engine(engine, num_workers=2) as service:
            for user in users:
                service.query(user=user, k=2, method="lazy")
        telemetry = service.metrics.snapshot()["telemetry"]
        assert telemetry["counters"]["query.count"] == 3  # the 100 is baseline
        assert telemetry["counters"]["query.lazy.count"] == 3
        assert telemetry["counters"]["query.lazy.samples"] > 0
        assert telemetry["deterministic"]["query.count"] == 3
        assert all(
            name.startswith(("query.", "estimator.", "guard.", "engine_cache."))
            for name in telemetry["deterministic"]
        )
        assert telemetry["workers"] == {}  # thread backend: no process shards
    finally:
        install(previous)


def test_service_sync_query_and_failure_paths(dataset):
    engine = make_engine(dataset)
    with PitexService.for_engine(engine) as service:
        result = service.query(user=dataset.workload("mid", 1)[0], k=2, method="lazy")
        assert result.tag_ids
        response = service.submit(QueryRequest(user=10**9, k=2, method="lazy")).result()
        assert not response.ok
        assert "UnknownVertexError" in response.error
        with pytest.raises(RuntimeError):
            service.query(user=10**9, k=2, method="lazy")
    assert service.metrics.snapshot()["failed"] == 2


def test_service_batches_group_same_engine_key(dataset):
    engine = make_engine(dataset)
    user = dataset.workload("mid", 1)[0]
    with PitexService.for_engine(engine, num_workers=1, max_batch=8) as service:
        futures = [
            service.submit(QueryRequest(user=user, k=2, method="lazy")) for _ in range(6)
        ]
        responses = [future.result() for future in futures]
    # With one worker, the first request may run alone but the backlog should
    # drain in grouped batches rather than six singletons.
    assert max(response.batch_size for response in responses) >= 2


def test_service_routes_engine_keys_and_fails_unknown(dataset):
    engines = {"a": make_engine(dataset, seed=1), "b": make_engine(dataset, seed=2)}

    def provider(key):
        return engines[key]

    user = dataset.workload("mid", 1)[0]
    with PitexService(provider, num_workers=2) as service:
        assert service.num_workers == 2
        assert service.execution_mode("a") == "unknown"  # nothing observed yet
        ok_a = service.submit(QueryRequest(user=user, k=2, method="lazy", engine_key="a")).result()
        ok_b = service.submit(QueryRequest(user=user, k=2, method="lazy", engine_key="b")).result()
        bad = service.submit(QueryRequest(user=user, k=2, method="lazy", engine_key="zz")).result()
        assert service.execution_mode("a") == "serial"
        assert service.execution_mode("zz") == "unknown"  # provider never resolved it
    assert ok_a.ok and ok_b.ok
    assert not bad.ok and "unavailable" in bad.error


def test_service_survives_cancelled_queued_future(dataset):
    engine = make_engine(dataset)
    user = dataset.workload("mid", 1)[0]
    with PitexService.for_engine(engine, num_workers=1, max_batch=4) as service:
        first = service.submit(QueryRequest(user=user, k=2, method="lazy"))
        second = service.submit(QueryRequest(user=user, k=2, method="lazy"))
        third = service.submit(QueryRequest(user=user, k=2, method="lazy"))
        second.cancel()  # may or may not win the race with the worker
        # The worker must survive a cancelled future and keep draining.
        assert first.result().ok
        assert third.result().ok


def test_service_rejects_submit_after_close(dataset):
    service = PitexService.for_engine(make_engine(dataset))
    service.close()
    with pytest.raises(RuntimeError):
        service.submit(QueryRequest(user=0, k=2, method="lazy", engine_key=DEFAULT_ENGINE_KEY))


def test_service_rejects_bad_parameters(dataset):
    engine = make_engine(dataset)
    with pytest.raises(InvalidParameterError):
        PitexService.for_engine(engine, num_workers=0)
    with pytest.raises(InvalidParameterError):
        PitexService.for_engine(engine, max_batch=0)
