"""Tests for the RR-Graph structure (Definitions 2 and 3)."""

import numpy as np
import pytest

from repro.graph.generators import line_graph, random_topic_graph
from repro.index.rr_graph import (
    RRGraph,
    generate_rr_graph,
    structurally_reachable,
    tag_aware_reachable,
)
from repro.utils.rng import RandomSource


def test_generate_rr_graph_deterministic_chain():
    """With probability-1 edges every upstream vertex joins the RR-Graph."""
    graph = line_graph(5, probability=1.0)
    rr = generate_rr_graph(graph, 4, RandomSource(1))
    assert rr.vertices == {0, 1, 2, 3, 4}
    assert rr.num_edges == 4
    assert all(threshold <= 1.0 for threshold in rr.edge_thresholds)


def test_generate_rr_graph_zero_probability_edges_excluded():
    graph = line_graph(4, probability=0.0)
    rr = generate_rr_graph(graph, 3, RandomSource(1))
    assert rr.vertices == {3}
    assert rr.num_edges == 0


def test_generate_rr_graph_thresholds_below_max_probability():
    graph = random_topic_graph(30, 2, edge_probability=0.3, base_probability=0.6, seed=2)
    maxima = graph.max_edge_probabilities()
    rr = generate_rr_graph(graph, 5, RandomSource(3))
    for edge_id, threshold in zip(rr.edge_ids, rr.edge_thresholds):
        assert threshold <= maxima[edge_id] + 1e-12


def test_generate_rr_graph_membership_frequency_matches_reachability():
    """The probability that u joins GRR_v equals Pr[u reaches v] under p(e)."""
    graph = line_graph(3, probability=0.5)
    rng = RandomSource(7)
    contains = 0
    trials = 4000
    for _ in range(trials):
        rr = generate_rr_graph(graph, 2, rng)
        if 0 in rr.vertices:
            contains += 1
    assert contains / trials == pytest.approx(0.25, abs=0.03)


def test_tag_aware_reachable_root_and_absent_vertices():
    graph = line_graph(3, probability=1.0)
    rr = generate_rr_graph(graph, 2, RandomSource(1))
    reachable, checked = tag_aware_reachable(rr, 2, np.ones(2))
    assert reachable and checked == 0
    reachable, _ = tag_aware_reachable(rr, 99, np.ones(2))
    assert not reachable


def test_tag_aware_reachable_depends_on_probabilities():
    graph = line_graph(3, probability=1.0)
    rr = RRGraph(root=2, vertices={0, 1, 2})
    rr.add_edge(graph.edge_id(0, 1), 0, 1, threshold=0.4)
    rr.add_edge(graph.edge_id(1, 2), 1, 2, threshold=0.6)
    high = np.array([0.7, 0.7])
    low = np.array([0.5, 0.5])
    assert tag_aware_reachable(rr, 0, high)[0]
    assert not tag_aware_reachable(rr, 0, low)[0]  # the 0.6 threshold edge is dead
    zero = np.zeros(2)
    assert not tag_aware_reachable(rr, 0, zero)[0]


def test_structurally_reachable_ignores_thresholds():
    graph = line_graph(4, probability=1.0)
    rr = generate_rr_graph(graph, 3, RandomSource(2))
    assert structurally_reachable(rr, 0) == {0, 1, 2, 3}
    assert structurally_reachable(rr, 99) == set()


def test_rr_graph_adjacency_and_memory():
    rr = RRGraph(root=3, vertices={1, 2, 3})
    rr.add_edge(0, 1, 3, 0.2)
    rr.add_edge(1, 2, 3, 0.5)
    assert rr.out_edges_of(1) == [0]
    assert sorted(rr.in_edges_of(3)) == [0, 1]
    assert rr.num_vertices == 3
    assert rr.num_edges == 2
    assert rr.memory_bytes() > 0
    assert rr.contains(2) and not rr.contains(9)
