"""Tests for query-stream generation and the workload replay driver."""

import pytest

from repro.bench.reporting import LATENCY_COLUMNS
from repro.core.engine import PitexEngine
from repro.datasets.synthetic import load_dataset
from repro.exceptions import InvalidParameterError
from repro.serve.replay import replay_stream
from repro.serve.service import PitexService


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("lastfm", scale=0.08, seed=11)


# ---------------------------------------------------------------- query_stream
def test_query_stream_is_deterministic_per_seed(dataset):
    workload = dataset.query_workload
    first = workload.query_stream(25, seed=42)
    second = workload.query_stream(25, seed=42)
    assert first == second
    assert workload.query_stream(25, seed=43) != first


def test_query_stream_is_insensitive_to_prior_draws(dataset):
    workload = dataset.query_workload
    expected = workload.query_stream(10, seed=7)
    workload.users("mid", 5)  # consume the workload's own RNG
    assert workload.query_stream(10, seed=7) == expected


def test_query_stream_members_and_weights(dataset):
    workload = dataset.query_workload
    stream = workload.query_stream(40, seed=1)
    assert len(stream) == 40
    for group, user in stream:
        assert user in workload.groups[group]
    only_mid = workload.query_stream(30, group_weights={"mid": 1.0}, seed=1)
    assert {group for group, _ in only_mid} == {"mid"}


def test_query_stream_rejects_bad_arguments(dataset):
    workload = dataset.query_workload
    with pytest.raises(InvalidParameterError):
        workload.query_stream(0, seed=1)
    with pytest.raises(InvalidParameterError):
        workload.query_stream(5, group_weights={"bogus": 1.0}, seed=1)
    with pytest.raises(InvalidParameterError):
        workload.query_stream(5, group_weights={"mid": 0.0}, seed=1)
    with pytest.raises(InvalidParameterError):
        workload.query_stream(5, seed=1, zipf_s=-0.1)


def test_query_stream_zipf_zero_is_bitwise_legacy(dataset):
    """zipf_s=0 (and the default) reproduce the historical uniform stream."""
    workload = dataset.query_workload
    legacy = workload.query_stream(25, seed=42)
    assert workload.query_stream(25, seed=42, zipf_s=0.0) == legacy


def test_query_stream_zipf_is_deterministic_and_valid(dataset):
    workload = dataset.query_workload
    first = workload.query_stream(30, seed=19, zipf_s=1.1)
    assert first == workload.query_stream(30, seed=19, zipf_s=1.1)
    assert first != workload.query_stream(30, seed=20, zipf_s=1.1)
    for group, user in first:
        assert user in workload.groups[group]


def test_query_stream_zipf_concentrates_repeat_traffic(dataset):
    """Higher zipf_s means fewer unique users, i.e. more cacheable repeats."""
    workload = dataset.query_workload

    def unique_users(zipf_s):
        stream = workload.query_stream(60, seed=23, zipf_s=zipf_s)
        return len({user for _, user in stream})

    uniques = [unique_users(zipf_s) for zipf_s in (0.0, 1.0, 2.5)]
    assert uniques[0] >= uniques[1] >= uniques[2]
    assert uniques[2] < uniques[0], "the skew never concentrated the draw"


# ---------------------------------------------------------------- replay_stream
def test_replay_reports_latencies_and_groups(dataset):
    engine = PitexEngine(
        dataset.graph, dataset.model, max_samples=40, index_samples=40, default_k=2, seed=3
    )
    stream = dataset.query_workload.query_stream(8, seed=5)
    with PitexService.for_engine(engine, num_workers=2, max_batch=4) as service:
        report = replay_stream(service, stream, method="lazy", k=2)
    assert report.num_queries == 8
    assert report.failures == 0
    assert report.overall.count == 8
    assert sum(acc.count for acc in report.by_group.values()) == 8
    assert set(report.by_group) == {group for group, _ in stream}
    assert report.wall_seconds > 0.0
    assert report.throughput_qps > 0.0
    table = report.to_result()
    assert table.columns == LATENCY_COLUMNS
    assert table.rows[0][0] == "all"
    assert len(table.rows) == 1 + len(report.by_group)
    document = report.to_json()
    assert document["num_queries"] == 8
    assert document["overall"]["count"] == 8
    assert document["overall"]["p95"] >= document["overall"]["p50"]


def test_replay_deterministic_results_for_seeded_stream_and_index(dataset):
    """Same stream + same prebuilt index => identical per-query answers."""
    from repro.index.rr_index import RRGraphIndex

    index = RRGraphIndex(dataset.graph, 60, seed=9).build()
    stream = dataset.query_workload.query_stream(6, seed=13)

    def run():
        engine = PitexEngine(
            dataset.graph,
            dataset.model,
            max_samples=40,
            index_samples=60,
            default_k=2,
            seed=3,
            rr_index=index,
        )
        with PitexService.for_engine(engine, num_workers=2, max_batch=3) as service:
            report = replay_stream(service, stream, method="indexest", k=2)
        return [(r.request.user, r.result.tag_ids, r.result.spread) for r in report.responses]

    assert run() == run()


def test_replay_with_max_in_flight_and_empty_stream(dataset):
    engine = PitexEngine(
        dataset.graph, dataset.model, max_samples=40, index_samples=40, default_k=2, seed=3
    )
    stream = dataset.query_workload.query_stream(4, seed=5)
    with PitexService.for_engine(engine) as service:
        report = replay_stream(service, stream, method="lazy", k=2, max_in_flight=2)
        assert report.failures == 0 and report.overall.count == 4
        with pytest.raises(InvalidParameterError):
            replay_stream(service, [], method="lazy")
        with pytest.raises(InvalidParameterError):
            replay_stream(service, stream, max_in_flight=0)
