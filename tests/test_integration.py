"""End-to-end integration tests across modules.

These exercise the full pipeline the README advertises: generate (or learn) a
dataset, build the engine, answer PITEX queries with different methods, and
check the answers against brute-force ground truth or against each other.
"""

import numpy as np

from repro.core.engine import PitexEngine
from repro.datasets.casestudy import build_case_study, evaluate_case_study
from repro.datasets.synthetic import load_dataset
from repro.graph.generators import random_topic_graph
from repro.propagation.exact import exact_best_tag_set
from repro.topics.action_log import generate_action_log
from repro.topics.model import TagTopicModel
from repro.topics.tic_learner import learn_tic_model


def test_end_to_end_on_learned_parameters():
    """Graph + synthetic log -> TIC learning -> PITEX query, all in one pipeline."""
    truth_graph = random_topic_graph(25, 3, edge_probability=0.15, base_probability=0.5, seed=31)
    truth_matrix = np.array(
        [
            [0.9, 0.0, 0.0],
            [0.7, 0.2, 0.0],
            [0.0, 0.9, 0.0],
            [0.0, 0.6, 0.3],
            [0.0, 0.0, 0.9],
        ]
    )
    truth_model = TagTopicModel(truth_matrix)
    log = generate_action_log(truth_graph, truth_model, num_items=60, tags_per_item=2, seeds_per_item=2, seed=7)
    learned = learn_tic_model(truth_graph, log, num_topics=3, num_tags=truth_model.num_tags)
    engine = PitexEngine(
        learned.graph, learned.model, max_samples=150, index_samples=200, default_k=2, seed=3
    )
    degrees = learned.graph.out_degrees()
    user = int(np.argmax(degrees))
    result = engine.query(user=user, k=2, method="lazy")
    assert len(result.tag_ids) == 2
    assert result.spread >= 1.0


def test_all_methods_agree_on_synthetic_dataset():
    """On a small dataset, every method should return a near-top tag set."""
    dataset = load_dataset("lastfm", scale=0.08, seed=19)  # ~100 vertices
    engine = PitexEngine(
        dataset.graph, dataset.model, epsilon=0.5, max_samples=300, index_samples=800, seed=19
    )
    user = dataset.workload("high", 1)[0]
    spreads = {}
    for method in ("lazy", "indexest", "indexest+", "delaymat"):
        result = engine.query(user=user, k=2, method=method)
        spreads[method] = result.spread
        assert len(result.tag_ids) == 2
    # The probabilistic methods agree within a generous band (eps = 0.5).
    values = list(spreads.values())
    assert max(values) <= 2.5 * max(min(values), 1.0)


def test_index_methods_match_brute_force_optimum():
    """On a tiny instance the index-based query finds the exact optimum."""
    graph = random_topic_graph(12, 2, edge_probability=0.2, base_probability=0.7, seed=5)
    matrix = np.array([[0.9, 0.0], [0.7, 0.1], [0.0, 0.9], [0.1, 0.7]])
    model = TagTopicModel(matrix)
    degrees = graph.out_degrees()
    user = int(np.argmax(degrees))
    expected_tags, expected_spread = exact_best_tag_set(graph, model, user, 2)
    engine = PitexEngine(graph, model, epsilon=0.4, max_samples=600, index_samples=4000, seed=23)
    result = engine.query(user=user, k=2, method="indexest+")
    # The returned spread must be within the (1-eps)/(1+eps) band of the optimum
    # even if the exact argmax differs among near-ties.
    ratio = (1 - 0.4) / (1 + 0.4)
    actual_spread = engine.estimate_influence(user, result.tag_ids, method="mc").value
    assert actual_spread >= ratio * expected_spread * 0.8
    assert result.spread > 1.0


def test_case_study_accuracy_is_meaningful():
    """The synthetic Table 4: returned tags mostly reflect the researchers' fields."""
    case = build_case_study(members_per_field=12, followers_per_researcher=10, seed=11)
    engine = PitexEngine(
        case.graph, case.model, epsilon=0.6, max_samples=150, index_samples=600, default_k=5, seed=11
    )
    rows = evaluate_case_study(case, engine, k=5, method="indexest+")
    assert len(rows) == 8
    accuracies = [accuracy for _, _, accuracy in rows]
    # Random tag selection would land around 10/45 = 0.22; the query should do
    # clearly better on average.
    assert float(np.mean(accuracies)) >= 0.5
    for _, tags, _ in rows:
        assert len(tags) == 5


def test_workload_queries_run_for_all_groups():
    dataset = load_dataset("diggs", scale=0.08, seed=29)
    engine = PitexEngine(dataset.graph, dataset.model, max_samples=100, index_samples=200, seed=29)
    for group in ("high", "mid", "low"):
        user = dataset.workload(group, 1)[0]
        result = engine.query(user=user, k=2, method="lazy")
        assert result.spread >= 1.0
