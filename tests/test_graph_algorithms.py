"""Tests for repro.graph.algorithms."""

import numpy as np
import pytest

from repro.graph.algorithms import (
    forward_reachable,
    live_edge_reachable,
    out_degree_groups,
    reachable_subgraph_edges,
    reachable_with_probabilities,
    reverse_live_edge_reachable,
    reverse_reachable,
    single_source_max_probability_paths,
    strongly_connected_components,
)
from repro.graph.digraph import TopicSocialGraph
from repro.graph.generators import line_graph, power_law_topic_graph


def diamond_graph():
    """0 -> {1,2} -> 3 with an isolated vertex 4."""
    graph = TopicSocialGraph(5, 1)
    graph.add_edge(0, 1, [0.5])
    graph.add_edge(0, 2, [0.5])
    graph.add_edge(1, 3, [0.5])
    graph.add_edge(2, 3, [0.5])
    return graph


def test_forward_reachable_full_and_restricted():
    graph = diamond_graph()
    assert forward_reachable(graph, 0) == {0, 1, 2, 3}
    assert forward_reachable(graph, 3) == {3}
    # forbid the edge 0->1: vertex 1 unreachable only if 0->1 is the only path
    forbidden = graph.edge_id(0, 1)
    reachable = forward_reachable(graph, 0, lambda e: e != forbidden)
    assert reachable == {0, 2, 3}


def test_reverse_reachable():
    graph = diamond_graph()
    assert reverse_reachable(graph, 3) == {0, 1, 2, 3}
    assert reverse_reachable(graph, 0) == {0}


def test_reachable_with_probabilities_threshold():
    graph = diamond_graph()
    probabilities = np.array([0.0, 0.5, 0.5, 0.5])  # edge 0->1 has zero probability
    reachable = reachable_with_probabilities(graph, 0, probabilities)
    assert reachable == {0, 2, 3}


def test_reachable_subgraph_edges():
    graph = diamond_graph()
    edges = reachable_subgraph_edges(graph, {0, 1, 3})
    endpoints = {graph.edge_endpoints(e) for e in edges}
    assert endpoints == {(0, 1), (1, 3)}


def test_live_edge_reachable_extremes():
    graph = diamond_graph()
    all_live, probes = live_edge_reachable(graph, 0, np.ones(4), lambda: 0.5)
    assert all_live == {0, 1, 2, 3}
    assert probes == 4
    none_live, probes = live_edge_reachable(graph, 0, np.zeros(4), lambda: 0.5)
    assert none_live == {0}
    assert probes == 0


def test_reverse_live_edge_reachable_extremes():
    graph = diamond_graph()
    all_live, _ = reverse_live_edge_reachable(graph, 3, np.ones(4), lambda: 0.5)
    assert all_live == {0, 1, 2, 3}
    none_live, _ = reverse_live_edge_reachable(graph, 3, np.zeros(4), lambda: 0.5)
    assert none_live == {3}


def test_strongly_connected_components_cycle_plus_tail():
    graph = TopicSocialGraph(4, 1)
    graph.add_edge(0, 1, [1.0])
    graph.add_edge(1, 2, [1.0])
    graph.add_edge(2, 0, [1.0])
    graph.add_edge(2, 3, [1.0])
    components = strongly_connected_components(graph)
    sizes = sorted(len(c) for c in components)
    assert sizes == [1, 3]
    big = next(c for c in components if len(c) == 3)
    assert set(big) == {0, 1, 2}


def test_strongly_connected_components_cover_all_vertices():
    graph = power_law_topic_graph(60, 3.0, 2, seed=3)
    components = strongly_connected_components(graph)
    covered = sorted(v for component in components for v in component)
    assert covered == list(range(60))


def test_out_degree_groups_partition_and_order():
    graph = power_law_topic_graph(200, 4.0, 2, seed=5)
    groups = out_degree_groups(graph)
    high, mid, low = groups["high"], groups["mid"], groups["low"]
    degrees = graph.out_degrees()
    assert high and mid and low
    assert set(high).isdisjoint(mid) and set(mid).isdisjoint(low)
    assert min(degrees[v] for v in high) >= max(degrees[v] for v in low)
    # all grouped users have at least one outgoing edge
    assert all(degrees[v] > 0 for v in high + mid + low)


def test_out_degree_groups_tiny_graph_fallbacks():
    graph = line_graph(3, probability=1.0)
    groups = out_degree_groups(graph)
    assert groups["high"]
    assert groups["mid"]
    assert groups["low"]


def test_single_source_max_probability_paths_line():
    graph = line_graph(4, probability=0.5)
    best = single_source_max_probability_paths(graph, 0, np.full(3, 0.5), probability_threshold=1e-9)
    assert best[0] == pytest.approx(1.0)
    assert best[1] == pytest.approx(0.5)
    assert best[2] == pytest.approx(0.25)
    assert best[3] == pytest.approx(0.125)


def test_single_source_max_probability_paths_prefers_best_path():
    graph = TopicSocialGraph(3, 1)
    graph.add_edge(0, 1, [0.9])
    graph.add_edge(1, 2, [0.9])
    graph.add_edge(0, 2, [0.5])
    probabilities = np.array([0.9, 0.9, 0.5])
    best = single_source_max_probability_paths(graph, 0, probabilities)
    assert best[2] == pytest.approx(0.81)


def test_single_source_max_probability_paths_threshold_prunes():
    graph = line_graph(6, probability=0.1)
    best = single_source_max_probability_paths(graph, 0, np.full(5, 0.1), probability_threshold=0.05)
    assert 5 not in best  # 0.1^5 = 1e-5 < threshold
    assert 1 in best
