"""Tests for the RR-Graph index estimators: IndexEst, IndexEst+ and DelayMat."""

import numpy as np
import pytest

from repro.exceptions import IndexNotBuiltError
from repro.graph.generators import line_graph, random_topic_graph
from repro.index.delayed import DelayedIndexEstimator, DelayedMaterializationIndex
from repro.index.pruning import PrunedIndexEstimator, build_edge_cut, choose_edge_cut
from repro.index.rr_graph import generate_rr_graph
from repro.index.rr_index import IndexEstimator, RRGraphIndex
from repro.index.sizing import measure_data_size, measure_delayed_index, measure_rr_index
from repro.sampling.base import SampleBudget
from repro.sampling.monte_carlo import MonteCarloEstimator
from repro.topics.model import TagTopicModel
from repro.utils.rng import RandomSource


@pytest.fixture(scope="module")
def indexed_instance():
    """A moderately sized graph with a built RR-Graph index shared by the tests."""
    graph = random_topic_graph(40, 2, edge_probability=0.12, base_probability=0.6, seed=17)
    matrix = np.array(
        [
            [0.9, 0.0],
            [0.7, 0.2],
            [0.0, 0.9],
            [0.2, 0.7],
        ]
    )
    model = TagTopicModel(matrix)
    index = RRGraphIndex(graph, num_samples=4000, seed=5).build()
    return graph, model, index


def monte_carlo_reference(graph, model, user, tag_set, num_samples=6000):
    """High-sample Monte-Carlo reference value for one (user, tag set) pair."""
    budget = SampleBudget(num_tags=model.num_tags, k=len(tag_set), max_samples=num_samples)
    estimator = MonteCarloEstimator(graph, model, budget, seed=1234)
    probabilities = model.edge_probabilities(graph, tag_set)
    return estimator.estimate_with_probabilities(user, probabilities, num_samples=num_samples).value


def test_index_requires_build():
    graph = line_graph(3, probability=0.5)
    index = RRGraphIndex(graph, num_samples=10, seed=1)
    with pytest.raises(IndexNotBuiltError):
        index.graphs_containing(0)
    with pytest.raises(IndexNotBuiltError):
        index.memory_bytes()


def test_index_containment_lists_consistent(indexed_instance):
    graph, _, index = indexed_instance
    assert len(index.rr_graphs) == index.num_samples
    for vertex, positions in index.containment.items():
        for position in positions:
            assert vertex in index.rr_graphs[position].vertices
    assert index.average_rr_graph_size() >= 1.0
    assert index.build_seconds > 0.0


def test_index_estimate_matches_monte_carlo_reference(indexed_instance):
    graph, model, index = indexed_instance
    user = 0
    tag_set = (0, 1)
    probabilities = model.edge_probabilities(graph, tag_set)
    reference = monte_carlo_reference(graph, model, user, tag_set)
    estimate = index.estimate(user, probabilities)
    assert estimate.value == pytest.approx(reference, rel=0.25, abs=0.5)
    assert estimate.method == "indexest"


def test_index_estimator_wrapper(indexed_instance):
    graph, model, index = indexed_instance
    estimator = IndexEstimator(graph, model, index, SampleBudget(num_tags=4, k=2))
    estimate = estimator.estimate(0, (0, 1))
    direct = index.estimate(0, model.edge_probabilities(graph, (0, 1)))
    assert estimate.value == pytest.approx(direct.value)


def test_index_estimator_rejects_wrong_graph(indexed_instance):
    graph, model, index = indexed_instance
    other = line_graph(3, probability=0.5, num_topics=2)
    with pytest.raises(IndexNotBuiltError):
        IndexEstimator(other, model, index)


def test_pruned_estimator_agrees_with_plain_index(indexed_instance):
    """Filter-and-verify must return exactly the same estimate as Algorithm 3."""
    graph, model, index = indexed_instance
    plain = IndexEstimator(graph, model, index)
    pruned = PrunedIndexEstimator(graph, model, index)
    for user in (0, 3, 7, 11):
        for tag_set in [(0,), (2,), (0, 1), (2, 3), (1, 2)]:
            probabilities = model.edge_probabilities(graph, tag_set)
            a = plain.estimate_with_probabilities(user, probabilities)
            b = pruned.estimate_with_probabilities(user, probabilities)
            assert a.value == pytest.approx(b.value), (user, tag_set)


def test_pruned_estimator_filters_candidates(indexed_instance):
    graph, model, index = indexed_instance
    pruned = PrunedIndexEstimator(graph, model, index)
    user = 0
    weak_tag_set = (2,)  # mostly topic-1 edges
    probabilities = model.edge_probabilities(graph, weak_tag_set)
    candidates, _ = pruned.filter_candidates(user, probabilities)
    universe = index.graphs_containing(user)
    assert len(candidates) <= len(universe)
    ratio = pruned.pruning_ratio(user, probabilities)
    assert 0.0 <= ratio <= 1.0


def test_edge_cut_construction_properties():
    graph = line_graph(4, probability=1.0)
    rr = generate_rr_graph(graph, 3, RandomSource(1))
    source_cut = build_edge_cut(rr, 0, 0, "source")
    target_cut = build_edge_cut(rr, 0, 0, "target")
    assert len(source_cut.entries) == 1  # 0 has one out-edge in the chain
    assert len(target_cut.entries) == 1  # 3 has one in-edge reachable from 0
    root_cut = build_edge_cut(rr, 3, 0, "source")
    assert root_cut.always_live
    with pytest.raises(ValueError):
        build_edge_cut(rr, 0, 0, "sideways")
    chosen = choose_edge_cut(rr, 0, 0, graph.max_edge_probabilities())
    assert chosen.entries or chosen.always_live


def test_edge_cut_pruning_probability_monotone():
    graph = line_graph(3, probability=1.0)
    rr = generate_rr_graph(graph, 2, RandomSource(1))
    cut = build_edge_cut(rr, 0, 0, "source")
    maxima = graph.max_edge_probabilities()
    probability = cut.pruning_probability(maxima)
    assert 0.0 <= probability <= 1.0
    always = build_edge_cut(rr, 2, 0, "source")
    assert always.pruning_probability(maxima) == 0.0


def test_delayed_index_counts_match_full_index(indexed_instance):
    graph, model, index = indexed_instance
    delayed = DelayedMaterializationIndex(graph, num_samples=4000, seed=5).build()
    # Same seed and sample count: the containment counts must match exactly.
    for user in range(graph.num_vertices):
        assert delayed.containment_count(user) == index.containment_count(user)


def test_delayed_index_memory_much_smaller(indexed_instance):
    graph, _, index = indexed_instance
    delayed = DelayedMaterializationIndex(graph, num_samples=4000, seed=5).build()
    assert delayed.memory_bytes() < index.memory_bytes() / 10
    rr_footprint = measure_rr_index(index, "test")
    delay_footprint = measure_delayed_index(delayed, "test")
    data_footprint = measure_data_size(graph, "test")
    assert delay_footprint.size_megabytes < rr_footprint.size_megabytes
    assert data_footprint.size_bytes == graph.memory_bytes()
    assert rr_footprint.row()[0] == "test"


def test_delayed_index_requires_build():
    graph = line_graph(3, probability=0.5)
    delayed = DelayedMaterializationIndex(graph, num_samples=10, seed=1)
    with pytest.raises(IndexNotBuiltError):
        delayed.containment_count(0)


def test_delayed_recovered_graphs_contain_user(indexed_instance):
    graph, _, _ = indexed_instance
    delayed = DelayedMaterializationIndex(graph, num_samples=500, seed=5).build()
    user = 0
    recovered = delayed.recover_for_user(user, RandomSource(9))
    assert len(recovered) == delayed.containment_count(user)
    for rr in recovered:
        assert user in rr.vertices
        assert rr.recovery_weight >= 1.0
        maxima = graph.max_edge_probabilities()
        for edge_id, threshold in zip(rr.edge_ids, rr.edge_thresholds):
            assert threshold <= maxima[edge_id]


def test_delayed_estimator_matches_monte_carlo_reference(indexed_instance):
    graph, model, index = indexed_instance
    delayed = DelayedMaterializationIndex(graph, num_samples=4000, seed=5).build()
    estimator = DelayedIndexEstimator(graph, model, delayed, seed=3)
    user = 0
    tag_set = (0, 1)
    probabilities = model.edge_probabilities(graph, tag_set)
    reference = monte_carlo_reference(graph, model, user, tag_set)
    estimate = estimator.estimate_with_probabilities(user, probabilities)
    assert estimate.value == pytest.approx(reference, rel=0.3, abs=0.5)


def test_delayed_estimator_pruning_consistency(indexed_instance):
    """With and without cut pruning the DelayMat estimate must be identical."""
    graph, model, _ = indexed_instance
    delayed = DelayedMaterializationIndex(graph, num_samples=1000, seed=5).build()
    with_pruning = DelayedIndexEstimator(graph, model, delayed, use_pruning=True, seed=3)
    without_pruning = DelayedIndexEstimator(graph, model, delayed, use_pruning=False, seed=3)
    user = 0
    probabilities = model.edge_probabilities(graph, (0, 1))
    a = with_pruning.estimate_with_probabilities(user, probabilities)
    b = without_pruning.estimate_with_probabilities(user, probabilities)
    # The recovered graphs differ between the two estimators (independent RNG
    # draws) so only approximate agreement is expected.
    assert a.value == pytest.approx(b.value, rel=0.4, abs=0.5)
    with_pruning.clear_cache()
    assert with_pruning._recovered == {}
